package main

import (
	"os"
	"strings"
	"testing"
)

// Smoke tests drive the full CLI run path on tiny configurations.

func TestRunCombinedMISUnderChurn(t *testing.T) {
	var out strings.Builder
	invalid, strict, err := run([]string{
		"-problem", "mis", "-algo", "combined", "-adversary", "churn",
		"-n", "64", "-rounds", "60", "-churn", "2", "-every", "20",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strict {
		t.Fatal("combined algorithm must be strict about invalid rounds")
	}
	if invalid != 0 {
		t.Fatalf("combined MIS produced %d invalid rounds:\n%s", invalid, out.String())
	}
	if !strings.Contains(out.String(), "mis / combined / churn") {
		t.Fatalf("missing header in output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "invalid rounds: 0 / 60") {
		t.Fatalf("missing verdict in output:\n%s", out.String())
	}
}

func TestRunColoringCSV(t *testing.T) {
	var out strings.Builder
	_, strict, err := run([]string{
		"-problem", "coloring", "-algo", "greedy", "-adversary", "static",
		"-n", "32", "-rounds", "10", "-csv",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if strict {
		t.Fatal("greedy baseline must not be strict")
	}
	if !strings.Contains(out.String(), "round,outputs,core") {
		t.Fatalf("missing CSV header:\n%s", out.String())
	}
}

// TestRunRecordAndReplayTrace drives the full record→replay loop: a p2p
// churn run recorded to a trace file, then replayed through the
// streaming decoder, must report the identical verdict (the trace fully
// determines topology and wake-ups, and engine randomness is seeded).
func TestRunRecordAndReplayTrace(t *testing.T) {
	trace := t.TempDir() + "/run.trace"
	var recOut strings.Builder
	recInvalid, _, err := run([]string{
		"-problem", "mis", "-algo", "combined", "-adversary", "p2p",
		"-n", "128", "-rounds", "40", "-churn", "2", "-every", "20",
		"-record", trace,
	}, &recOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(recOut.String(), "mis / combined / p2p") {
		t.Fatalf("missing header in record output:\n%s", recOut.String())
	}

	var repOut strings.Builder
	repInvalid, _, err := run([]string{
		"-problem", "mis", "-algo", "combined", "-trace", trace, "-every", "20",
	}, &repOut)
	if err != nil {
		t.Fatal(err)
	}
	if repInvalid != recInvalid {
		t.Fatalf("replay reported %d invalid rounds, recording %d", repInvalid, recInvalid)
	}
	if !strings.Contains(repOut.String(), "mis / combined / trace: n=128") {
		t.Fatalf("replay header did not pick up the trace universe:\n%s", repOut.String())
	}
	if !strings.Contains(repOut.String(), "invalid rounds: ") {
		t.Fatalf("missing verdict in replay output:\n%s", repOut.String())
	}
}

// TestRunCheckpointResume checkpoints a run mid-way with -checkpoint-every,
// resumes from the final checkpoint with a fresh process image, and
// checks the resumed segment completes with the same zero-invalid
// verdict. The full bit-identity of resumed runs is pinned by
// internal/faultinject; here we exercise the CLI plumbing.
func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ck := dir + "/run.ck"
	common := []string{
		"-problem", "mis", "-algo", "combined", "-adversary", "churn",
		"-n", "64", "-churn", "2", "-every", "20",
	}
	var out strings.Builder
	invalid, _, err := run(append(common, "-rounds", "40", "-checkpoint", ck, "-checkpoint-every", "15"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if invalid != 0 {
		t.Fatalf("reference run produced %d invalid rounds:\n%s", invalid, out.String())
	}

	// The final checkpoint is at round 40; extend the run beyond it.
	var resumed strings.Builder
	invalid, _, err = run(append(common, "-rounds", "60", "-resume", ck), &resumed)
	if err != nil {
		t.Fatal(err)
	}
	if invalid != 0 {
		t.Fatalf("resumed run produced %d invalid rounds:\n%s", invalid, resumed.String())
	}
	if !strings.Contains(resumed.String(), "(resumed at round 40)") {
		t.Fatalf("missing resume marker:\n%s", resumed.String())
	}
	if !strings.Contains(resumed.String(), "invalid rounds: 0 / 20") {
		t.Fatalf("resumed verdict should cover the 20-round tail:\n%s", resumed.String())
	}

	// A mismatched reconstruction must be rejected by the header.
	if _, _, err := run([]string{
		"-problem", "mis", "-algo", "combined", "-adversary", "churn",
		"-n", "128", "-churn", "2", "-rounds", "60", "-resume", ck,
	}, &strings.Builder{}); err == nil {
		t.Fatal("resume with a different -n succeeded")
	}
	// Resuming at or past -rounds has nothing to play.
	if _, _, err := run(append(common, "-rounds", "40", "-resume", ck), &strings.Builder{}); err == nil {
		t.Fatal("resume at -rounds succeeded")
	}
}

// TestRunCheckpointChain drives the incremental-chain CLI surface:
// -checkpoint-every writes a chain container (sniffable by its magic),
// -checkpoint-full-every rebases it, a resume that names the same file
// as its checkpoint target keeps appending to the restored chain, and
// the extended chain resumes again.
func TestRunCheckpointChain(t *testing.T) {
	dir := t.TempDir()
	ck := dir + "/run.ck"
	common := []string{
		"-problem", "mis", "-algo", "combined", "-adversary", "churn",
		"-n", "64", "-churn", "2", "-every", "20",
	}
	var out strings.Builder
	invalid, _, err := run(append(common,
		"-rounds", "40", "-checkpoint", ck, "-checkpoint-every", "6", "-checkpoint-full-every", "3"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if invalid != 0 {
		t.Fatalf("reference run produced %d invalid rounds:\n%s", invalid, out.String())
	}
	head, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	if len(head) == 0 || head[0] != 'D' {
		t.Fatalf("-checkpoint-every did not produce a chain container (first byte %#x)", head[0])
	}

	// Resume with the same file as the checkpoint target: the run must
	// keep appending deltas to the restored chain.
	var resumed strings.Builder
	invalid, _, err = run(append(common,
		"-rounds", "52", "-resume", ck, "-checkpoint", ck, "-checkpoint-every", "6"), &resumed)
	if err != nil {
		t.Fatal(err)
	}
	if invalid != 0 {
		t.Fatalf("resumed run produced %d invalid rounds:\n%s", invalid, resumed.String())
	}
	if !strings.Contains(resumed.String(), "(resumed at round 40)") {
		t.Fatalf("missing resume marker:\n%s", resumed.String())
	}

	// The extended chain (old records + newly appended deltas) resumes.
	var again strings.Builder
	if _, _, err := run(append(common, "-rounds", "60", "-resume", ck), &again); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(again.String(), "(resumed at round 52)") {
		t.Fatalf("extended chain should resume at round 52:\n%s", again.String())
	}
}

func TestRunCheckpointFullEveryRequiresEvery(t *testing.T) {
	if _, _, err := run([]string{
		"-checkpoint", "x.ck", "-checkpoint-full-every", "3", "-n", "16", "-rounds", "2",
	}, &strings.Builder{}); err == nil {
		t.Fatal("-checkpoint-full-every without -checkpoint-every succeeded")
	}
}

// TestRunRecoverTornTrace tears a recording mid-round and drives the
// -recover path: the salvaged trace must replay cleanly with the round
// count the tear left intact.
func TestRunRecoverTornTrace(t *testing.T) {
	dir := t.TempDir()
	trace := dir + "/run.trace"
	if _, _, err := run([]string{
		"-problem", "mis", "-algo", "combined", "-adversary", "churn",
		"-n", "48", "-rounds", "30", "-churn", "2", "-record", trace,
	}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	torn := dir + "/torn.trace"
	if err := os.WriteFile(torn, whole[:len(whole)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	salvaged := dir + "/salvaged.trace"
	var out strings.Builder
	if _, _, err := run([]string{"-recover", torn, "-record", salvaged}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "recovered 29 complete rounds") {
		t.Fatalf("unexpected recovery report:\n%s", out.String())
	}
	var rep strings.Builder
	if _, _, err := run([]string{"-trace", salvaged, "-every", "10"}, &rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "invalid rounds: ") {
		t.Fatalf("salvaged trace did not replay:\n%s", rep.String())
	}
	// -recover without a destination is an error.
	if _, _, err := run([]string{"-recover", torn}, &strings.Builder{}); err == nil {
		t.Fatal("-recover without -record succeeded")
	}
}

func TestRunCheckpointEveryRequiresPath(t *testing.T) {
	if _, _, err := run([]string{"-checkpoint-every", "5", "-n", "16", "-rounds", "2"}, &strings.Builder{}); err == nil {
		t.Fatal("-checkpoint-every without -checkpoint succeeded")
	}
}

func TestRunRejectsMissingTraceFile(t *testing.T) {
	if _, _, err := run([]string{"-trace", "/nonexistent/x.trace"}, &strings.Builder{}); err == nil {
		t.Fatal("expected error for missing trace file")
	}
}

func TestRunRejectsUnknownFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-problem", "nosuch"},
		{"-problem", "mis", "-algo", "nosuch", "-n", "16", "-rounds", "1"},
		{"-adversary", "nosuch", "-n", "16", "-rounds", "1"},
	} {
		if _, _, err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
