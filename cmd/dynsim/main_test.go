package main

import (
	"strings"
	"testing"
)

// Smoke tests drive the full CLI run path on tiny configurations.

func TestRunCombinedMISUnderChurn(t *testing.T) {
	var out strings.Builder
	invalid, strict, err := run([]string{
		"-problem", "mis", "-algo", "combined", "-adversary", "churn",
		"-n", "64", "-rounds", "60", "-churn", "2", "-every", "20",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strict {
		t.Fatal("combined algorithm must be strict about invalid rounds")
	}
	if invalid != 0 {
		t.Fatalf("combined MIS produced %d invalid rounds:\n%s", invalid, out.String())
	}
	if !strings.Contains(out.String(), "mis / combined / churn") {
		t.Fatalf("missing header in output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "invalid rounds: 0 / 60") {
		t.Fatalf("missing verdict in output:\n%s", out.String())
	}
}

func TestRunColoringCSV(t *testing.T) {
	var out strings.Builder
	_, strict, err := run([]string{
		"-problem", "coloring", "-algo", "greedy", "-adversary", "static",
		"-n", "32", "-rounds", "10", "-csv",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if strict {
		t.Fatal("greedy baseline must not be strict")
	}
	if !strings.Contains(out.String(), "round,outputs,core") {
		t.Fatalf("missing CSV header:\n%s", out.String())
	}
}

func TestRunRejectsUnknownFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-problem", "nosuch"},
		{"-problem", "mis", "-algo", "nosuch", "-n", "16", "-rounds", "1"},
		{"-adversary", "nosuch", "-n", "16", "-rounds", "1"},
	} {
		if _, _, err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
