package main

import (
	"strings"
	"testing"
)

// Smoke tests drive the full CLI run path on tiny configurations.

func TestRunCombinedMISUnderChurn(t *testing.T) {
	var out strings.Builder
	invalid, strict, err := run([]string{
		"-problem", "mis", "-algo", "combined", "-adversary", "churn",
		"-n", "64", "-rounds", "60", "-churn", "2", "-every", "20",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strict {
		t.Fatal("combined algorithm must be strict about invalid rounds")
	}
	if invalid != 0 {
		t.Fatalf("combined MIS produced %d invalid rounds:\n%s", invalid, out.String())
	}
	if !strings.Contains(out.String(), "mis / combined / churn") {
		t.Fatalf("missing header in output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "invalid rounds: 0 / 60") {
		t.Fatalf("missing verdict in output:\n%s", out.String())
	}
}

func TestRunColoringCSV(t *testing.T) {
	var out strings.Builder
	_, strict, err := run([]string{
		"-problem", "coloring", "-algo", "greedy", "-adversary", "static",
		"-n", "32", "-rounds", "10", "-csv",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if strict {
		t.Fatal("greedy baseline must not be strict")
	}
	if !strings.Contains(out.String(), "round,outputs,core") {
		t.Fatalf("missing CSV header:\n%s", out.String())
	}
}

// TestRunRecordAndReplayTrace drives the full record→replay loop: a p2p
// churn run recorded to a trace file, then replayed through the
// streaming decoder, must report the identical verdict (the trace fully
// determines topology and wake-ups, and engine randomness is seeded).
func TestRunRecordAndReplayTrace(t *testing.T) {
	trace := t.TempDir() + "/run.trace"
	var recOut strings.Builder
	recInvalid, _, err := run([]string{
		"-problem", "mis", "-algo", "combined", "-adversary", "p2p",
		"-n", "128", "-rounds", "40", "-churn", "2", "-every", "20",
		"-record", trace,
	}, &recOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(recOut.String(), "mis / combined / p2p") {
		t.Fatalf("missing header in record output:\n%s", recOut.String())
	}

	var repOut strings.Builder
	repInvalid, _, err := run([]string{
		"-problem", "mis", "-algo", "combined", "-trace", trace, "-every", "20",
	}, &repOut)
	if err != nil {
		t.Fatal(err)
	}
	if repInvalid != recInvalid {
		t.Fatalf("replay reported %d invalid rounds, recording %d", repInvalid, recInvalid)
	}
	if !strings.Contains(repOut.String(), "mis / combined / trace: n=128") {
		t.Fatalf("replay header did not pick up the trace universe:\n%s", repOut.String())
	}
	if !strings.Contains(repOut.String(), "invalid rounds: ") {
		t.Fatalf("missing verdict in replay output:\n%s", repOut.String())
	}
}

func TestRunRejectsMissingTraceFile(t *testing.T) {
	if _, _, err := run([]string{"-trace", "/nonexistent/x.trace"}, &strings.Builder{}); err == nil {
		t.Fatal("expected error for missing trace file")
	}
}

func TestRunRejectsUnknownFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-problem", "nosuch"},
		{"-problem", "mis", "-algo", "nosuch", "-n", "16", "-rounds", "1"},
		{"-adversary", "nosuch", "-n", "16", "-rounds", "1"},
	} {
		if _, _, err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
