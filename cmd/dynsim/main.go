// Command dynsim runs a single dynamic-network simulation from the
// command line: pick a problem, an algorithm, an adversary and a
// workload, and get per-round statistics plus a final verdict from the
// round-by-round checkers.
//
// Usage examples:
//
//	go run ./cmd/dynsim -problem mis -algo combined -adversary churn -n 1024 -rounds 200
//	go run ./cmd/dynsim -problem coloring -algo greedy -adversary markov -csv
//	go run ./cmd/dynsim -problem mis -algo restart -adversary static -n 512
//	go run ./cmd/dynsim -adversary p2p -n 4096 -rounds 500 -record run.trace
//	go run ./cmd/dynsim -trace run.trace
//
// -record streams every round's wake set and topology diff to a trace
// file; -trace replays such a file (node count and, by default, round
// count come from its header) through the streaming decoder, so traces
// far larger than memory replay in constant memory.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"dynlocal"
	"dynlocal/internal/stats"
)

// errFlagParse marks flag errors the FlagSet has already reported to
// stderr, so main does not print them a second time.
var errFlagParse = errors.New("flag parse error")

func main() {
	invalidRounds, strict, err := run(os.Args[1:], os.Stdout)
	switch {
	case errors.Is(err, flag.ErrHelp):
		return
	case errors.Is(err, errFlagParse):
		os.Exit(2)
	case err != nil:
		log.Fatal(err)
	}
	if invalidRounds > 0 && strict {
		os.Exit(1)
	}
}

// run executes one simulation and reports the number of invalid rounds
// plus whether that should fail the process (the combined and restart
// algorithms promise zero invalid rounds). Factored out of main so smoke
// tests can drive the full CLI path.
func run(args []string, out io.Writer) (invalidRounds int, strict bool, err error) {
	fs := flag.NewFlagSet("dynsim", flag.ContinueOnError)
	problem := fs.String("problem", "mis", "problem: mis | coloring")
	algo := fs.String("algo", "combined", "algorithm: combined | dynamic | static | greedy | restart")
	adversaryKind := fs.String("adversary", "churn", "adversary: static | churn | markov | p2p")
	n := fs.Int("n", 512, "number of nodes")
	rounds := fs.Int("rounds", 200, "rounds to simulate")
	churn := fs.Int("churn", 8, "edges inserted+deleted per round (churn adversary)")
	flap := fs.Float64("flap", 0.05, "per-edge flip probability (markov adversary)")
	avgDeg := fs.Float64("deg", 8, "average degree of the base graph")
	seed := fs.Uint64("seed", 1, "random seed")
	every := fs.Int("every", 10, "print a row every k rounds")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	tracePath := fs.String("trace", "", "replay a recorded trace file instead of running an adversary (-n and default -rounds come from its header)")
	recordPath := fs.String("record", "", "record the run's rounds to a trace file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0, false, err
		}
		return 0, false, fmt.Errorf("%w: %v", errFlagParse, err)
	}

	// A replayed trace dictates the node universe and, unless -rounds was
	// given explicitly, the round count; its header must be read before
	// the algorithm (sized by n) is built.
	var streamed *dynlocal.ScriptedStreamAdversary
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return 0, false, err
		}
		defer f.Close()
		dec, err := dynlocal.NewTraceStreamDecoder(f)
		if err != nil {
			return 0, false, fmt.Errorf("reading trace %s: %w", *tracePath, err)
		}
		*n = dec.N()
		roundsSet := false
		fs.Visit(func(fl *flag.Flag) { roundsSet = roundsSet || fl.Name == "rounds" })
		if !roundsSet {
			*rounds = dec.Rounds()
		}
		streamed = dynlocal.NewScriptedStream(dec)
	}

	var pc dynlocal.Problem
	var algorithm dynlocal.Algorithm
	window := 0
	switch *problem {
	case "mis":
		pc = dynlocal.MISProblem()
		switch *algo {
		case "combined":
			c := dynlocal.NewMIS(*n)
			algorithm, window = c, c.T1
		case "dynamic":
			c := dynlocal.NewMIS(*n)
			algorithm, window = dynlocal.NewDMis(*n), c.T1
		case "static":
			c := dynlocal.NewMIS(*n)
			algorithm, window = dynlocal.NewSMis(*n), c.T1
		case "greedy":
			c := dynlocal.NewMIS(*n)
			algorithm, window = dynlocal.NewGreedyRepairMIS(*n), c.T1
		case "restart":
			c := dynlocal.NewRestartMIS(*n)
			algorithm, window = c, c.T1
		default:
			return 0, false, fmt.Errorf("unknown -algo %q for mis", *algo)
		}
	case "coloring":
		pc = dynlocal.ColoringProblem()
		switch *algo {
		case "combined":
			c := dynlocal.NewColoring(*n)
			algorithm, window = c, c.T1
		case "dynamic":
			c := dynlocal.NewColoring(*n)
			algorithm, window = dynlocal.NewDColor(*n), c.T1
		case "static":
			c := dynlocal.NewColoring(*n)
			algorithm, window = dynlocal.NewSColor(*n), c.T1
		case "greedy":
			c := dynlocal.NewColoring(*n)
			algorithm, window = dynlocal.NewGreedyRepairColoring(*n), c.T1
		default:
			return 0, false, fmt.Errorf("unknown -algo %q for coloring", *algo)
		}
	default:
		return 0, false, fmt.Errorf("unknown -problem %q", *problem)
	}

	var adv dynlocal.Adversary
	if streamed != nil {
		adv = streamed
		*adversaryKind = "trace"
	} else {
		switch *adversaryKind {
		case "static":
			adv = dynlocal.StaticAdversary{G: dynlocal.GNP(*n, *avgDeg/float64(*n), *seed)}
		case "churn":
			adv = dynlocal.NewChurn(dynlocal.GNP(*n, *avgDeg/float64(*n), *seed), *churn, *churn, *seed+1)
		case "markov":
			adv = dynlocal.NewEdgeMarkov(dynlocal.GNP(*n, *avgDeg/float64(*n), *seed), *flap, *flap, *seed+1)
		case "p2p":
			adv = &dynlocal.P2PChurnAdversary{
				N:            *n,
				Init:         *n / 8,
				JoinPerRound: *churn,
				Seed:         *seed + 1,
			}
		default:
			return 0, false, fmt.Errorf("unknown -adversary %q", *adversaryKind)
		}
	}

	eng := dynlocal.NewEngine(dynlocal.EngineConfig{N: *n, Seed: *seed}, adv, algorithm)
	check := dynlocal.NewTDynamicChecker(pc, window, *n)

	var rec *dynlocal.TraceStreamEncoder
	if *recordPath != "" {
		f, err := os.Create(*recordPath)
		if err != nil {
			return 0, false, err
		}
		defer f.Close()
		rec, err = dynlocal.NewTraceStreamEncoder(f, *n, *rounds)
		if err != nil {
			return 0, false, err
		}
		eng.OnRound(func(info *dynlocal.RoundInfo) {
			if err := rec.WriteRound(info.Wake, info.EdgeAdds, info.EdgeRemoves); err != nil {
				log.Fatalf("recording round %d: %v", info.Round, err)
			}
		})
	}

	table := stats.NewTable("round", "outputs", "core", "invalid?", "packViol", "coverViol", "msgs")
	eng.OnRound(func(info *dynlocal.RoundInfo) {
		rep := check.Feed(info.Delta())
		if !rep.Valid() {
			invalidRounds++
		}
		if info.Round != 1 && info.Round%*every != 0 {
			return
		}
		produced := 0
		for _, out := range info.Outputs {
			if out != dynlocal.Bot {
				produced++
			}
		}
		table.AddRow(info.Round, produced, rep.CoreNodes, !rep.Valid(),
			len(rep.PackingViolations), len(rep.CoverViolations), info.Messages)
	})
	eng.Run(*rounds)
	if rec != nil {
		if err := rec.Close(); err != nil {
			return 0, false, fmt.Errorf("recording trace: %w", err)
		}
	}
	if streamed != nil {
		if err := streamed.Err(); err != nil {
			return 0, false, fmt.Errorf("replaying trace %s: %w", *tracePath, err)
		}
	}

	fmt.Fprintf(out, "%s / %s / %s: n=%d, window T=%d, %d rounds\n\n",
		*problem, *algo, *adversaryKind, *n, window, *rounds)
	if *csv {
		table.CSV(out)
	} else {
		table.Render(out)
	}
	fmt.Fprintf(out, "\ninvalid rounds: %d / %d\n", invalidRounds, *rounds)
	return invalidRounds, *algo == "combined" || *algo == "restart", nil
}
