// Command dynsim runs a single dynamic-network simulation from the
// command line: pick a problem, an algorithm, an adversary and a
// workload, and get per-round statistics plus a final verdict from the
// round-by-round checkers.
//
// Usage examples:
//
//	go run ./cmd/dynsim -problem mis -algo combined -adversary churn -n 1024 -rounds 200
//	go run ./cmd/dynsim -problem coloring -algo greedy -adversary markov -csv
//	go run ./cmd/dynsim -problem mis -algo restart -adversary static -n 512
//	go run ./cmd/dynsim -adversary p2p -n 4096 -rounds 500 -record run.trace
//	go run ./cmd/dynsim -trace run.trace
//	go run ./cmd/dynsim -adversary churn -rounds 10000 -checkpoint run.ck -checkpoint-every 500
//	go run ./cmd/dynsim -adversary churn -rounds 10000 -checkpoint run.ck -checkpoint-every 500 -checkpoint-full-every 8
//	go run ./cmd/dynsim -adversary churn -rounds 10000 -resume run.ck
//	go run ./cmd/dynsim -recover torn.trace -record salvaged.trace
//
// -record streams every round's wake set and topology diff to a trace
// file; -trace replays such a file (node count and, by default, round
// count come from its header) through the streaming decoder, so traces
// far larger than memory replay in constant memory.
//
// Recording is crash-safe: rounds stream to a temporary file that is
// fsynced and renamed into place only on clean completion, and with
// -checkpoint-every the stream is additionally fsynced at the same
// cadence, so a crash leaves a torn temporary that -recover salvages
// back to the last complete round.
//
// -checkpoint writes the full deterministic run state (engine, algorithm
// nodes, adversary, checker — see docs/checkpointing.md) atomically at
// the end of the run. With -checkpoint-every k the file becomes an
// incremental base+delta chain instead: the first periodic checkpoint
// atomically writes a full base record, and each later one appends a
// delta record covering only the state that moved since the previous
// record, so the steady-state checkpoint cost scales with the
// inter-checkpoint activity rather than the universe size.
// -checkpoint-full-every m rebases the chain — an atomic rewrite with a
// fresh full base — every m checkpoints, bounding both the chain length
// a resume must replay and the file growth.
//
// -resume sniffs the format (chain container or plain stream), restores
// it, and plays the remaining rounds; the run must be reconstructed with
// the same flags (problem, algo, adversary, n, seed) — the checkpoint
// header rejects any mismatch — and the resumed rounds are bit-identical
// to the uninterrupted run, under any worker count. When -resume and
// -checkpoint name the same chain file, the run keeps appending deltas
// to the chain it restored from.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"dynlocal"
	"dynlocal/internal/stats"
)

// errFlagParse marks flag errors the FlagSet has already reported to
// stderr, so main does not print them a second time.
var errFlagParse = errors.New("flag parse error")

func main() {
	invalidRounds, strict, err := run(os.Args[1:], os.Stdout)
	switch {
	case errors.Is(err, flag.ErrHelp):
		return
	case errors.Is(err, errFlagParse):
		os.Exit(2)
	case err != nil:
		log.Fatal(err)
	}
	if invalidRounds > 0 && strict {
		os.Exit(1)
	}
}

// run executes one simulation and reports the number of invalid rounds
// plus whether that should fail the process (the combined and restart
// algorithms promise zero invalid rounds). Factored out of main so smoke
// tests can drive the full CLI path.
func run(args []string, out io.Writer) (invalidRounds int, strict bool, err error) {
	fs := flag.NewFlagSet("dynsim", flag.ContinueOnError)
	problem := fs.String("problem", "mis", "problem: mis | coloring")
	algo := fs.String("algo", "combined", "algorithm: combined | dynamic | static | greedy | restart")
	adversaryKind := fs.String("adversary", "churn", "adversary: static | churn | markov | p2p")
	n := fs.Int("n", 512, "number of nodes")
	rounds := fs.Int("rounds", 200, "rounds to simulate")
	churn := fs.Int("churn", 8, "edges inserted+deleted per round (churn adversary)")
	flap := fs.Float64("flap", 0.05, "per-edge flip probability (markov adversary)")
	avgDeg := fs.Float64("deg", 8, "average degree of the base graph")
	seed := fs.Uint64("seed", 1, "random seed")
	every := fs.Int("every", 10, "print a row every k rounds")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	tracePath := fs.String("trace", "", "replay a recorded trace file instead of running an adversary (-n and default -rounds come from its header)")
	recordPath := fs.String("record", "", "record the run's rounds to a trace file (written atomically: temp file, fsync, rename)")
	recoverPath := fs.String("recover", "", "salvage a torn trace recording into the -record path and exit")
	checkpointPath := fs.String("checkpoint", "", "write run state to this file (atomically) at the end of the run, and periodically with -checkpoint-every")
	checkpointEvery := fs.Int("checkpoint-every", 0, "also checkpoint (and fsync the recording) every k rounds, as an incremental chain: full base record first, one appended delta record per later checkpoint")
	checkpointFullEvery := fs.Int("checkpoint-full-every", 0, "with -checkpoint-every, rebase the chain (atomic rewrite with a fresh full base record) every m checkpoints; 0 never rebases")
	resumePath := fs.String("resume", "", "restore run state from a checkpoint file and play the remaining rounds (pass the same flags as the checkpointed run)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0, false, err
		}
		return 0, false, fmt.Errorf("%w: %v", errFlagParse, err)
	}
	if *checkpointEvery > 0 && *checkpointPath == "" {
		return 0, false, errors.New("-checkpoint-every requires -checkpoint")
	}
	if *checkpointFullEvery > 0 && *checkpointEvery == 0 {
		return 0, false, errors.New("-checkpoint-full-every requires -checkpoint-every")
	}
	if *recoverPath != "" {
		if *recordPath == "" {
			return 0, false, errors.New("-recover requires -record as the salvage destination")
		}
		n, err := recoverTrace(*recoverPath, *recordPath)
		if err != nil {
			return 0, false, err
		}
		fmt.Fprintf(out, "recovered %d complete rounds from %s into %s\n", n, *recoverPath, *recordPath)
		return 0, false, nil
	}

	// A replayed trace dictates the node universe and, unless -rounds was
	// given explicitly, the round count; its header must be read before
	// the algorithm (sized by n) is built.
	var streamed *dynlocal.ScriptedStreamAdversary
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return 0, false, err
		}
		defer f.Close()
		dec, err := dynlocal.NewTraceStreamDecoder(f)
		if err != nil {
			return 0, false, fmt.Errorf("reading trace %s: %w", *tracePath, err)
		}
		*n = dec.N()
		roundsSet := false
		fs.Visit(func(fl *flag.Flag) { roundsSet = roundsSet || fl.Name == "rounds" })
		if !roundsSet {
			*rounds = dec.Rounds()
		}
		streamed = dynlocal.NewScriptedStream(dec)
	}

	var pc dynlocal.Problem
	var algorithm dynlocal.Algorithm
	window := 0
	switch *problem {
	case "mis":
		pc = dynlocal.MISProblem()
		switch *algo {
		case "combined":
			c := dynlocal.NewMIS(*n)
			algorithm, window = c, c.T1
		case "dynamic":
			c := dynlocal.NewMIS(*n)
			algorithm, window = dynlocal.NewDMis(*n), c.T1
		case "static":
			c := dynlocal.NewMIS(*n)
			algorithm, window = dynlocal.NewSMis(*n), c.T1
		case "greedy":
			c := dynlocal.NewMIS(*n)
			algorithm, window = dynlocal.NewGreedyRepairMIS(*n), c.T1
		case "restart":
			c := dynlocal.NewRestartMIS(*n)
			algorithm, window = c, c.T1
		default:
			return 0, false, fmt.Errorf("unknown -algo %q for mis", *algo)
		}
	case "coloring":
		pc = dynlocal.ColoringProblem()
		switch *algo {
		case "combined":
			c := dynlocal.NewColoring(*n)
			algorithm, window = c, c.T1
		case "dynamic":
			c := dynlocal.NewColoring(*n)
			algorithm, window = dynlocal.NewDColor(*n), c.T1
		case "static":
			c := dynlocal.NewColoring(*n)
			algorithm, window = dynlocal.NewSColor(*n), c.T1
		case "greedy":
			c := dynlocal.NewColoring(*n)
			algorithm, window = dynlocal.NewGreedyRepairColoring(*n), c.T1
		default:
			return 0, false, fmt.Errorf("unknown -algo %q for coloring", *algo)
		}
	default:
		return 0, false, fmt.Errorf("unknown -problem %q", *problem)
	}

	var adv dynlocal.Adversary
	if streamed != nil {
		adv = streamed
		*adversaryKind = "trace"
	} else {
		switch *adversaryKind {
		case "static":
			adv = dynlocal.StaticAdversary{G: dynlocal.GNP(*n, *avgDeg/float64(*n), *seed)}
		case "churn":
			adv = dynlocal.NewChurn(dynlocal.GNP(*n, *avgDeg/float64(*n), *seed), *churn, *churn, *seed+1)
		case "markov":
			adv = dynlocal.NewEdgeMarkov(dynlocal.GNP(*n, *avgDeg/float64(*n), *seed), *flap, *flap, *seed+1)
		case "p2p":
			adv = &dynlocal.P2PChurnAdversary{
				N:            *n,
				Init:         *n / 8,
				JoinPerRound: *churn,
				Seed:         *seed + 1,
			}
		default:
			return 0, false, fmt.Errorf("unknown -adversary %q", *adversaryKind)
		}
	}

	eng := dynlocal.NewEngine(dynlocal.EngineConfig{N: *n, Seed: *seed}, adv, algorithm)
	check := dynlocal.NewTDynamicChecker(pc, window, *n)

	// A resumed run restores engine, algorithm nodes, adversary and
	// checker state before any round plays; the checkpoint header rejects
	// a reconstruction that does not match the checkpointed run.
	startRound := 0
	// chainRecs counts the records in the live chain file; 0 means no
	// chain has been started yet (or plain full-checkpoint mode).
	chainRecs := 0
	if *resumePath != "" {
		chained, err := readCheckpointFile(*resumePath, eng, check)
		if err != nil {
			return 0, false, fmt.Errorf("resuming from %s: %w", *resumePath, err)
		}
		startRound = eng.Round()
		if startRound >= *rounds {
			return 0, false, fmt.Errorf("checkpoint %s is at round %d, at or past -rounds %d", *resumePath, startRound, *rounds)
		}
		if chained && *checkpointEvery > 0 && *checkpointPath == *resumePath {
			// The resumed chain is also the checkpoint target: keep
			// appending deltas to it instead of restarting a chain.
			chainRecs = int(eng.ChainSeq())
		}
	}

	// Recording streams to a temporary file renamed into place only on
	// clean completion; a crash leaves a torn temporary for -recover.
	var rec *dynlocal.TraceStreamEncoder
	var recFile *os.File
	recTmp := *recordPath + ".tmp"
	if *recordPath != "" {
		f, err := os.Create(recTmp)
		if err != nil {
			return 0, false, err
		}
		recFile = f
		defer func() {
			if recFile != nil {
				recFile.Close()
				os.Remove(recTmp)
			}
		}()
		rec, err = dynlocal.NewTraceStreamEncoder(f, *n, *rounds-startRound)
		if err != nil {
			return 0, false, err
		}
		rec.SyncEvery(*checkpointEvery)
		eng.OnRound(func(info *dynlocal.RoundInfo) {
			if err := rec.WriteRound(info.Wake, info.EdgeAdds, info.EdgeRemoves); err != nil {
				log.Fatalf("recording round %d: %v", info.Round, err)
			}
		})
	}

	table := stats.NewTable("round", "outputs", "core", "invalid?", "packViol", "coverViol", "msgs")
	eng.OnRound(func(info *dynlocal.RoundInfo) {
		rep := check.Feed(info.Delta())
		if !rep.Valid() {
			invalidRounds++
		}
		if info.Round != 1 && info.Round%*every != 0 {
			return
		}
		produced := 0
		for _, out := range info.Outputs {
			if out != dynlocal.Bot {
				produced++
			}
		}
		table.AddRow(info.Round, produced, rep.CoreNodes, !rep.Valid(),
			len(rep.PackingViolations), len(rep.CoverViolations), info.Messages)
	})
	for eng.Round() < *rounds {
		eng.Step()
		// Checkpoints are taken here, at the round barrier between Steps,
		// never from inside an observer.
		if *checkpointEvery > 0 && eng.Round() < *rounds &&
			(eng.Round()-startRound)%*checkpointEvery == 0 {
			if err := chainCheckpoint(*checkpointPath, eng, check, &chainRecs, *checkpointFullEvery); err != nil {
				return 0, false, fmt.Errorf("checkpoint at round %d: %w", eng.Round(), err)
			}
		}
	}
	if *checkpointPath != "" {
		var err error
		if chainRecs > 0 {
			err = appendCheckpointDelta(*checkpointPath, eng, check)
		} else {
			err = writeCheckpoint(*checkpointPath, eng, check)
		}
		if err != nil {
			return 0, false, fmt.Errorf("final checkpoint: %w", err)
		}
	}
	if rec != nil {
		err := rec.Close()
		if err == nil {
			err = recFile.Sync()
		}
		if cerr := recFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return 0, false, fmt.Errorf("recording trace: %w", err)
		}
		if err := os.Rename(recTmp, *recordPath); err != nil {
			return 0, false, err
		}
		recFile = nil
	}
	if streamed != nil {
		if err := streamed.Err(); err != nil {
			return 0, false, fmt.Errorf("replaying trace %s: %w", *tracePath, err)
		}
	}

	fmt.Fprintf(out, "%s / %s / %s: n=%d, window T=%d, %d rounds",
		*problem, *algo, *adversaryKind, *n, window, *rounds)
	if startRound > 0 {
		fmt.Fprintf(out, " (resumed at round %d)", startRound)
	}
	fmt.Fprint(out, "\n\n")
	if *csv {
		table.CSV(out)
	} else {
		table.Render(out)
	}
	fmt.Fprintf(out, "\ninvalid rounds: %d / %d\n", invalidRounds, *rounds-startRound)
	return invalidRounds, *algo == "combined" || *algo == "restart", nil
}

// writeCheckpoint writes the composed engine+checker state atomically: a
// same-directory temporary file, fsynced, renamed over path — so a crash
// mid-checkpoint never clobbers the previous good checkpoint.
func writeCheckpoint(path string, e *dynlocal.Engine, c *dynlocal.TDynamicChecker) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = dynlocal.WriteCheckpoint(f, e, c)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// chainCheckpoint advances the incremental checkpoint chain: the first
// call — and every rebase, once fullEvery records have accumulated —
// atomically rewrites path as a fresh chain (magic plus one full base
// record); later calls append one delta record, so the steady-state
// checkpoint cost scales with inter-checkpoint activity, not with n.
func chainCheckpoint(path string, e *dynlocal.Engine, c *dynlocal.TDynamicChecker, recs *int, fullEvery int) error {
	if *recs == 0 || (fullEvery > 0 && *recs >= fullEvery) {
		if err := startCheckpointChain(path, e, c); err != nil {
			return err
		}
		*recs = 1
		return nil
	}
	if err := appendCheckpointDelta(path, e, c); err != nil {
		return err
	}
	*recs++
	return nil
}

// startCheckpointChain atomically (re)creates path as a chain container
// holding one full base record, with the same temp+fsync+rename pattern
// as writeCheckpoint: a crash mid-rebase never clobbers the previous
// good chain.
func startCheckpointChain(path string, e *dynlocal.Engine, c *dynlocal.TDynamicChecker) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = dynlocal.WriteCheckpointChain(f, e, c)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// appendCheckpointDelta appends one fsynced delta record to the chain
// file in place. A crash mid-append leaves a torn tail that fails the
// chain's record framing on resume — rebase (or restart the run from the
// last good chain prefix) rather than trusting a torn tail.
func appendCheckpointDelta(path string, e *dynlocal.Engine, c *dynlocal.TDynamicChecker) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	err = dynlocal.AppendCheckpointDelta(f, e, c)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// readCheckpointFile restores path into the freshly built run, sniffing
// the format from the first byte: a chain container opens with the raw
// "DLCKC1" magic, a plain composed stream with the varint-framed
// "DLCK1" header.
func readCheckpointFile(path string, e *dynlocal.Engine, c *dynlocal.TDynamicChecker) (chained bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(1)
	if err != nil {
		return false, err
	}
	if head[0] == dynlocal.ChainMagic[0] {
		return true, dynlocal.ReadCheckpointChain(br, e, c, nil)
	}
	return false, dynlocal.ReadCheckpoint(br, e, c)
}

// recoverTrace salvages the longest complete-round prefix of a torn
// trace recording into dst, written with the same atomic pattern.
func recoverTrace(src, dst string) (int, error) {
	in, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	tmp := dst + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	n, err := dynlocal.RecoverTrace(in, f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return n, os.Rename(tmp, dst)
}
