// Command experiments regenerates the full evaluation of the reproduction:
// one table per experiment E01–E15 (see the internal/experiments package
// doc and ARCHITECTURE.md for the mapping from each experiment to the
// paper claim it reproduces). Every number is deterministic for a fixed
// -seed.
//
// Usage:
//
//	go run ./cmd/experiments            # run everything (minutes)
//	go run ./cmd/experiments -quick     # reduced sweeps (tens of seconds)
//	go run ./cmd/experiments -run E05   # substring filter
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"dynlocal/internal/experiments"
	"dynlocal/internal/stats"
)

// errFlagParse marks flag errors the FlagSet has already reported to
// stderr, so main does not print them a second time.
var errFlagParse = errors.New("flag parse error")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		switch {
		case errors.Is(err, flag.ErrHelp):
			return
		case errors.Is(err, errFlagParse):
			os.Exit(2)
		default:
			log.Fatal(err)
		}
	}
}

// run executes the selected experiments. Factored out of main so smoke
// tests can drive the full CLI path.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced sweeps")
	runFilter := fs.String("run", "", "only run experiments whose id contains this substring")
	seed := fs.Uint64("seed", 0, "seed (0 = default)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errFlagParse, err)
	}

	p := experiments.Params{Quick: *quick, Seed: *seed}

	type experiment struct {
		id, title string
		run       func()
	}
	all := []experiment{
		{"E01", "DColor convergence = O(log n) for any dynamic graph (Lemma 4.4 / Cor. 1.2)", func() { printConvergence(out, experiments.E01DColorConvergence(p)) }},
		{"E02", "conflicts from inserted edges resolve within T; never against old neighbors (Cor. 1.2)", func() { printConflicts(out, experiments.E02ConflictResolution(p)) }},
		{"E03", "locally static ⇒ output frozen after T1+T2 (Theorem 1.1(2))", func() { printStability(out, experiments.E03LocalStability(p)) }},
		{"E04", "uncolored nodes: colored w.p. ≥ 1/64 or palette shrinks 1/4 (Lemmas 4.3/6.1)", func() { printProgress(out, experiments.E04ColoringProgress(p)) }},
		{"E05", "DMis undecided-edge decay ≤ 2/3 per 2 rounds (Lemma 5.2)", func() { printDecay(out, experiments.E05MISEdgeDecay(p)) }},
		{"E06", "DMis convergence = O(log n) (Lemma 5.4 / Cor. 1.3)", func() { printConvergence(out, experiments.E06DMisConvergence(p)) }},
		{"E07", "SMis decides static-2-ball nodes in O(log n), never revisits (Lemma 5.6)", func() { printStaticBall(out, experiments.E07SMisStaticBall(p)) }},
		{"E08", "Concat outputs a T-dynamic solution EVERY round (Theorem 1.1(1))", func() { printEndToEnd(out, experiments.E08ConcatEndToEnd(p)) }},
		{"E09", "recovery baselines lose validity under churn; restart flickers (Section 1)", func() { printBaselines(out, experiments.E09Baselines(p)) }},
		{"E10", "window size: T below the static lower bound ⇒ violations (Section 1.1)", func() { printWindowSweep(out, experiments.E10WindowSweep(p)) }},
		{"E11", "δ-fraction windows interpolate union → intersection (Section 7.2)", func() { printDelta(out, experiments.E11DeltaWindows(p)) }},
		{"E12", "messages stay poly log n bits (Section 2 remark)", func() { printBits(out, experiments.E12MessageBits(p)) }},
		{"E13", "adaptive-offline adversary voids DMis's guarantees (remark after Lemma 5.2)", func() { printClairvoyant(out, experiments.E13Clairvoyant(p)) }},
		{"E14", "asynchronous wake-up preserves all guarantees (Section 2/7.2)", func() { printAsync(out, experiments.E14AsyncWakeup(p)) }},
		{"E15", "engine throughput and worker scaling", func() { printScaling(out, experiments.E15EngineScaling(p)) }},
	}

	for _, ex := range all {
		if *runFilter != "" && !strings.Contains(ex.id, *runFilter) {
			continue
		}
		fmt.Fprintf(out, "=== %s: %s\n\n", ex.id, ex.title)
		start := time.Now()
		ex.run()
		fmt.Fprintf(out, "\n    (%.1fs)\n\n", time.Since(start).Seconds())
	}
	return nil
}

func printConvergence(out io.Writer, res experiments.ConvergenceResult) {
	t := stats.NewTable("adversary", "n", "window T", "mean", "p90", "max")
	for _, pt := range res.Points {
		t.AddRow(string(pt.Adversary), pt.N, pt.Window, pt.Rounds.Mean, pt.Rounds.P90, pt.Rounds.Max)
	}
	t.Render(out)
	fmt.Fprintf(out, "\n    static-series fit: rounds ≈ %.2f·log2(n) + %.2f  (R²=%.3f)\n",
		res.Fit.Slope, res.Fit.Intercept, res.Fit.R2)
}

func printConflicts(out io.Writer, res experiments.ConflictResolutionResult) {
	fmt.Fprintf(out, "    n=%d  window T=%d  injected conflict edges: %d\n", res.N, res.Window, res.Injected)
	fmt.Fprintf(out, "    resolution rounds: mean %.1f  p90 %.0f  max %.0f  (bound: T=%d)\n",
		res.ResolutionRounds.Mean, res.ResolutionRounds.P90, res.ResolutionRounds.Max, res.Window)
	fmt.Fprintf(out, "    unresolved past T: %d (paper: 0)\n", res.Unresolved)
	fmt.Fprintf(out, "    conflicts against intersection-graph neighbors: %d (paper: 0)\n", res.StaleConflictRound)
}

func printStability(out io.Writer, results []experiments.StabilityResult) {
	t := stats.NewTable("problem", "n", "wait T1+T2", "protChanges", "protBot", "unprotChanges")
	for _, r := range results {
		t.AddRow(r.Problem, r.N, r.Wait, r.ProtectedChanges, r.ProtectedBot, r.UnprotectedChanges)
	}
	t.Render(out)
	fmt.Fprintln(out, "\n    protChanges and protBot must be 0; unprotChanges > 0 shows churn was live")
}

func printProgress(out io.Writer, results []experiments.ProgressResult) {
	t := stats.NewTable("algorithm", "slow node-rounds", "colored", "empirical P", "bound 1/64")
	for _, r := range results {
		t.AddRow(r.Algorithm, r.SlowRounds, r.SlowColored, r.EmpiricalProb, r.Bound)
	}
	t.Render(out)
}

func printDecay(out io.Writer, results []experiments.DecayResult) {
	t := stats.NewTable("adversary", "n", "samples", "mean decay", "p90 decay", "bound")
	for _, r := range results {
		t.AddRow(string(r.Adversary), r.N, r.Samples, r.MeanDecay, r.P90Decay, r.Bound)
	}
	t.Render(out)
}

func printStaticBall(out io.Writer, results []experiments.StaticBallResult) {
	t := stats.NewTable("n", "decide mean", "decide p90", "decide max", "changesAfter", "undecided")
	for _, r := range results {
		t.AddRow(r.N, r.DecideRounds.Mean, r.DecideRounds.P90, r.DecideRounds.Max,
			r.ChangesAfter, r.UndecidedAtEnd)
	}
	t.Render(out)
}

func printEndToEnd(out io.Writer, results []experiments.EndToEndResult) {
	t := stats.NewTable("problem", "adversary", "n", "window", "rounds", "invalid", "violations")
	for _, r := range results {
		t.AddRow(r.Problem, string(r.Adversary), r.N, r.Window, r.Rounds, r.InvalidRounds, r.Violations)
	}
	t.Render(out)
}

func printBaselines(out io.Writer, results []experiments.BaselineResult) {
	t := stats.NewTable("algorithm", "churn/round", "invalid frac", "output churn")
	for _, r := range results {
		t.AddRow(r.Algorithm, r.ChurnPerRound, r.InvalidFrac, r.OutputChurn)
	}
	t.Render(out)
}

func printWindowSweep(out io.Writer, results []experiments.WindowSweepResult) {
	t := stats.NewTable("window T", "default T*", "invalid frac", "⊥-core rounds")
	for _, r := range results {
		t.AddRow(r.Window, r.DefaultWindow, r.InvalidFrac, r.BotCoreRounds)
	}
	t.Render(out)
}

func printDelta(out io.Writer, results []experiments.DeltaWindowResult) {
	t := stats.NewTable("delta", "mean |E(G^δT)|", "conflicts")
	for _, r := range results {
		t.AddRow(r.Delta, r.MeanEdges, r.Conflicts)
	}
	t.Render(out)
}

func printBits(out io.Writer, results []experiments.MessageBitsResult) {
	t := stats.NewTable("algorithm", "n", "log2 n", "bits/msg")
	for _, r := range results {
		t.AddRow(r.Algorithm, r.N, r.Log2N, r.BitsPerMsg)
	}
	t.Render(out)
}

func printClairvoyant(out io.Writer, r experiments.ClairvoyantResult) {
	t := stats.NewTable("adversary", "rounds", "|M|", "dominated", "notes")
	t.AddRow("2-oblivious", r.ObliviousRounds, r.ObliviousMISSize, r.ObliviousDominated, "proper MIS")
	t.AddRow("adaptive-offline", r.ClairvoyantRounds, r.ClairvoyantMISSize, r.ClairvoyantDominated,
		fmt.Sprintf("burned %d edges, %d base-graph violations", r.EdgesBurned, r.BaseViolations))
	t.Render(out)
	fmt.Fprintln(out, "\n    P[(v→w)_r] = 0 under the seed-reading adversary: dominations never happen")
}

func printAsync(out io.Writer, results []experiments.AsyncWakeupResult) {
	t := stats.NewTable("schedule/problem", "n", "rounds", "invalid", "final core")
	for _, r := range results {
		t.AddRow(r.Schedule, r.N, r.Rounds, r.InvalidRounds, r.FinalCore)
	}
	t.Render(out)
}

func printScaling(out io.Writer, results []experiments.ScalingResult) {
	t := stats.NewTable("n", "workers", "rounds", "seconds", "rounds/s", "node-rounds/s")
	for _, r := range results {
		t.AddRow(r.N, r.Workers, r.Rounds, r.Seconds, r.RoundsPerSec, r.NodeRoundsSec)
	}
	t.Render(out)
}
