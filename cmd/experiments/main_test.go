package main

import (
	"strings"
	"testing"
)

// Smoke test: drive the CLI run path on the cheapest experiment with quick
// sweeps and check the report shape.
func TestRunSingleExperimentQuick(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-run", "E13"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"=== E13", "adaptive-offline", "2-oblivious"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunFilterMatchesNothing(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "E99"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "===") {
		t.Fatalf("filter E99 should run nothing, got:\n%s", out.String())
	}
}
