package dynlocal

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"testing"
)

var updateChainGolden = flag.Bool("update", false, "rewrite the golden chain fixture under testdata/")

// The composed-chain scenario: a combined MIS run under churn with the
// T-dynamic checker fed from the engine's round-delta plane — the exact
// pairing WriteCheckpointChain/ReadCheckpointChain is documented for.
const (
	chainN      = 128
	chainRounds = 24
	chainBase   = 4
	chainStride = 3
)

func newComposedRun(workers int) (*Engine, *TDynamicChecker, *[]TDynamicReport) {
	algo := NewMIS(chainN)
	adv := NewChurn(GNP(chainN, 8.0/float64(chainN), 11), 6, 6, 12)
	eng := NewEngine(EngineConfig{N: chainN, Seed: 5, Workers: workers}, adv, algo)
	chk := NewTDynamicChecker(MISProblem(), algo.T1, chainN)
	reports := new([]TDynamicReport)
	eng.OnRound(func(info *RoundInfo) {
		rep := chk.Feed(info.Delta())
		rep.PackingViolations = slices.Clone(rep.PackingViolations)
		rep.CoverViolations = slices.Clone(rep.CoverViolations)
		*reports = append(*reports, rep)
	})
	return eng, chk, reports
}

func checkerTotals(c *TDynamicChecker) [5]int {
	rounds, invalid, packing, cover, bot := c.Totals()
	return [5]int{rounds, invalid, packing, cover, bot}
}

// buildComposedChain plays the reference run, starting a chain at round
// chainBase and appending a delta every chainStride rounds. It returns
// the per-round reports, the final checker totals, the chain prefix
// after each record, and the round each record was taken at.
func buildComposedChain(t *testing.T) (refReports []TDynamicReport, refTotals [5]int, prefixes [][]byte, recRounds []int) {
	t.Helper()
	eng, chk, reports := newComposedRun(1)
	var chain bytes.Buffer
	for r := 1; r <= chainRounds; r++ {
		eng.Step()
		switch {
		case r == chainBase:
			if err := WriteCheckpointChain(&chain, eng, chk); err != nil {
				t.Fatalf("base record at round %d: %v", r, err)
			}
		case r > chainBase && (r-chainBase)%chainStride == 0:
			if err := AppendCheckpointDelta(&chain, eng, chk); err != nil {
				t.Fatalf("delta record at round %d: %v", r, err)
			}
		default:
			continue
		}
		prefixes = append(prefixes, slices.Clone(chain.Bytes()))
		recRounds = append(recRounds, r)
	}
	return *reports, checkerTotals(chk), prefixes, recRounds
}

// resumeComposed restores a chain prefix into a fresh run and replays to
// the end, returning the post-restore reports and final totals.
func resumeComposed(t *testing.T, prefix []byte, workers int, arena *RestoreArena) (at int, reports []TDynamicReport, tot [5]int) {
	t.Helper()
	eng, chk, rep := newComposedRun(workers)
	if err := ReadCheckpointChain(bytes.NewReader(prefix), eng, chk, arena); err != nil {
		t.Fatalf("restore chain prefix: %v", err)
	}
	at = eng.Round()
	for eng.Round() < chainRounds {
		eng.Step()
	}
	return at, *rep, checkerTotals(chk)
}

// TestComposedChainResumeEveryPrefix is the facade-level chain
// equivalence property: restoring every prefix of a composed
// engine+checker chain — with and without an arena, under worker counts
// 1 and 4 — and replaying to the end must reproduce the uninterrupted
// run's T-dynamic reports round for round and its final totals.
func TestComposedChainResumeEveryPrefix(t *testing.T) {
	refReports, refTotals, prefixes, recRounds := buildComposedChain(t)
	arena := NewRestoreArena()
	for i, prefix := range prefixes {
		for _, workers := range []int{1, 4} {
			// The arena owns one restored run at a time: Reset only
			// after the previous restore's engine and checker are dropped.
			var a *RestoreArena
			if i%2 == 1 {
				arena.Reset()
				a = arena
			}
			at, reports, tot := resumeComposed(t, prefix, workers, a)
			if at != recRounds[i] {
				t.Fatalf("prefix %d: restored at round %d, want %d", i, at, recRounds[i])
			}
			want := refReports[recRounds[i]:]
			if len(reports) != len(want) {
				t.Fatalf("prefix %d workers %d: %d resumed reports, want %d", i, workers, len(reports), len(want))
			}
			for j := range want {
				if !reflect.DeepEqual(reports[j], want[j]) {
					t.Fatalf("prefix %d workers %d: round %d report diverges:\nwant %+v\ngot  %+v",
						i, workers, recRounds[i]+j+1, want[j], reports[j])
				}
			}
			if tot != refTotals {
				t.Fatalf("prefix %d workers %d: totals %v, want %v", i, workers, tot, refTotals)
			}
		}
	}
}

// TestReadCheckpointArenaEquivalence pins the bare-stream arena path:
// ReadCheckpointArena must behave exactly like ReadCheckpoint, and one
// arena must be reusable across sequential restores via Reset.
func TestReadCheckpointArenaEquivalence(t *testing.T) {
	const ckAt = 10
	eng, chk, reports := newComposedRun(1)
	var ck bytes.Buffer
	for r := 1; r <= chainRounds; r++ {
		eng.Step()
		if r == ckAt {
			if err := WriteCheckpoint(&ck, eng, chk); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}
	}
	refReports, refTotals := *reports, checkerTotals(chk)

	arena := NewRestoreArena()
	for attempt := 0; attempt < 2; attempt++ {
		arena.Reset()
		eng2, chk2, rep2 := newComposedRun(4)
		if err := ReadCheckpointArena(bytes.NewReader(ck.Bytes()), eng2, chk2, arena); err != nil {
			t.Fatalf("attempt %d: arena restore: %v", attempt, err)
		}
		if eng2.Round() != ckAt {
			t.Fatalf("attempt %d: restored at round %d, want %d", attempt, eng2.Round(), ckAt)
		}
		for eng2.Round() < chainRounds {
			eng2.Step()
		}
		if !reflect.DeepEqual(*rep2, refReports[ckAt:]) {
			t.Fatalf("attempt %d: resumed reports diverge from reference", attempt)
		}
		if got := checkerTotals(chk2); got != refTotals {
			t.Fatalf("attempt %d: totals %v, want %v", attempt, got, refTotals)
		}
	}
}

// TestComposedChainGolden pins the chain container bytes: the scenario
// is fully deterministic, so the complete chain must match the checked-in
// fixture bit for bit. Regenerate with
//
//	go test -run TestComposedChainGolden -update
//
// after an intentional format change, and call out the change in
// docs/checkpointing.md.
func TestComposedChainGolden(t *testing.T) {
	_, _, prefixes, recRounds := buildComposedChain(t)
	got := prefixes[len(prefixes)-1]
	path := filepath.Join("testdata", "chain_v1_mis_n128.golden")
	if *updateChainGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("chain bytes diverge from golden: %d bytes vs %d — rerun with -update if the format change is intentional", len(got), len(want))
	}

	// The checked-in fixture must still restore.
	eng, chk, _ := newComposedRun(1)
	if err := ReadCheckpointChain(bytes.NewReader(want), eng, chk, nil); err != nil {
		t.Fatalf("golden chain restore: %v", err)
	}
	if last := recRounds[len(recRounds)-1]; eng.Round() != last {
		t.Fatalf("golden chain restored at round %d, want %d", eng.Round(), last)
	}
}
