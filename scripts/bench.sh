#!/usr/bin/env bash
# Runs the root bench suite with -benchmem and records the results as
# BENCH_<date><label>.json in the repo root, so the performance trajectory
# of the simulator is tracked in-tree.
#
# Usage:
#   scripts/bench.sh                 # full suite, 2s per bench
#   BENCH='E06|E08' scripts/bench.sh # filter benches by regex
#   LABEL=-pre scripts/bench.sh      # suffix the output file name
#   BENCHTIME=1x scripts/bench.sh    # single iteration (smoke run)
#
# The full suite includes BenchmarkTDynamicChecker (incremental vs oracle
# verification at N=4096), so the perf trajectory tracks checker cost;
# BENCH_<date>-verify.json holds its dedicated baseline.
set -euo pipefail

cd "$(dirname "$0")/.."

BENCH="${BENCH:-.}"
LABEL="${LABEL:-}"
# 2s per benchmark by default: enough iterations that ns/op is a mean,
# not a single cold-cache sample (recordings made at BENCHTIME=1x report
# iterations:1 and should not be compared against averaged runs). Heavy
# one-shot benches still run once if a single iteration exceeds 2s.
BENCHTIME="${BENCHTIME:-2s}"
COUNT="${COUNT:-1}"
OUT="BENCH_$(date +%F)${LABEL}.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" \
	-count "$COUNT" -timeout 60m . | tee "$TMP"

# num_cpu/gomaxprocs make the scaling-matrix caveat machine-readable:
# recordings from a 1-CPU box can be filtered out before comparing
# >1-worker cells (see docs/benchmarking.md).
NUM_CPU="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
EFFECTIVE_GOMAXPROCS="${GOMAXPROCS:-$NUM_CPU}"

# The dynlint commit ties each recording to the exact contract-checker
# state that vetted the tree (see docs/linting.md); -dirty marks
# uncommitted changes.
DYNLINT_COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
if ! git diff --quiet 2>/dev/null || ! git diff --cached --quiet 2>/dev/null; then
	DYNLINT_COMMIT="${DYNLINT_COMMIT}-dirty"
fi
DYNLINT_VERSION="$(go run ./scripts/dynlint -version 2>/dev/null || echo unknown)"

awk -v date="$(date -u +%FT%TZ)" -v goversion="$(go env GOVERSION)" \
	-v host="$(uname -sm)" -v ncpu="$NUM_CPU" -v gmp="$EFFECTIVE_GOMAXPROCS" \
	-v dlver="$DYNLINT_VERSION" -v dlcommit="$DYNLINT_COMMIT" '
BEGIN {
	printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"host\": \"%s\",\n  \"num_cpu\": %d,\n  \"gomaxprocs\": %d,\n  \"dynlint\": \"%s\",\n  \"dynlint_commit\": \"%s\",\n  \"benchmarks\": [", date, goversion, host, ncpu, gmp, dlver, dlcommit
	first = 1
}
/^Benchmark/ && NF >= 4 {
	name = $1
	iters = $2
	ns = ""; bytes = ""; allocs = ""; extra = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		v = $i; u = $(i + 1)
		if (u == "ns/op") ns = v
		else if (u == "B/op") bytes = v
		else if (u == "allocs/op") allocs = v
		else {
			if (extra != "") extra = extra ", "
			extra = extra sprintf("\"%s\": %s", u, v)
		}
	}
	if (!first) printf ","
	first = 0
	printf "\n    {\"name\": \"%s\", \"iterations\": %s", name, iters
	if (ns != "") printf ", \"ns_per_op\": %s", ns
	if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	if (extra != "") printf ", \"metrics\": {%s}", extra
	printf "}"
}
END { printf "\n  ]\n}\n" }
' "$TMP" > "$OUT"

echo "wrote $OUT"
