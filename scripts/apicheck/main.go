// Command apicheck is the CI gate on the library's exported surface. It
// renders the public API of package dynlocal with go doc -all, normalizes
// it down to declarations only, and compares the result against the
// checked-in snapshot docs/api-surface.txt. Any drift — an export added,
// removed or re-signatured without updating the snapshot — fails the
// build, which turns every API change into an explicit, reviewable diff.
//
// Run it from the repo root:
//
//	go run ./scripts/apicheck          # verify, exit 1 on drift
//	go run ./scripts/apicheck -update  # rewrite docs/api-surface.txt
//
// Normalization keeps section headers (CONSTANTS, FUNCTIONS, TYPES, ...)
// and declaration lines, and drops the package comment, per-declaration
// doc prose (the 4-space-indented text go doc emits), comment-only lines
// and blanks. Doc wording can therefore improve freely; only the
// signatures are pinned.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
)

const snapshotPath = "docs/api-surface.txt"

var sectionHeaders = map[string]bool{
	"CONSTANTS": true,
	"VARIABLES": true,
	"FUNCTIONS": true,
	"TYPES":     true,
}

func main() {
	update := flag.Bool("update", false, "rewrite "+snapshotPath+" instead of verifying it")
	flag.Parse()

	out, err := exec.Command("go", "doc", "-all", ".").Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "apicheck: go doc -all .: %v\n", err)
		os.Exit(1)
	}
	got := normalize(string(out))

	if *update {
		if err := os.WriteFile(snapshotPath, []byte(got), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "apicheck: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("apicheck: wrote %s (%d lines)\n", snapshotPath, strings.Count(got, "\n"))
		return
	}

	want, err := os.ReadFile(snapshotPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apicheck: %v\nRun: go run ./scripts/apicheck -update\n", err)
		os.Exit(1)
	}
	if got == string(want) {
		return
	}
	fmt.Fprintf(os.Stderr, "apicheck: exported API surface drifted from %s\n\n", snapshotPath)
	reportDiff(strings.Split(strings.TrimRight(string(want), "\n"), "\n"),
		strings.Split(strings.TrimRight(got, "\n"), "\n"))
	fmt.Fprintf(os.Stderr, "\nIf the change is intentional: go run ./scripts/apicheck -update\n")
	os.Exit(1)
}

// normalize reduces go doc -all output to the declaration surface: the
// package clause is skipped until the first section header, and from
// there every blank, comment-only or 4-space-indented prose line is
// dropped.
func normalize(doc string) string {
	var b strings.Builder
	inBody := false
	for _, line := range strings.Split(doc, "\n") {
		if !inBody {
			inBody = sectionHeaders[line]
			if !inBody {
				continue
			}
		}
		if line == "" || strings.HasPrefix(line, "    ") {
			continue
		}
		if strings.HasPrefix(strings.TrimLeft(line, "\t"), "//") {
			continue
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// reportDiff prints the set difference of the two line lists — enough to
// see what was added or removed without a real diff algorithm.
func reportDiff(want, got []string) {
	wantSet := make(map[string]int, len(want))
	for _, l := range want {
		wantSet[l]++
	}
	gotSet := make(map[string]int, len(got))
	for _, l := range got {
		gotSet[l]++
	}
	for _, l := range want {
		if gotSet[l] == 0 {
			fmt.Fprintf(os.Stderr, "  - %s\n", l)
		}
	}
	for _, l := range got {
		if wantSet[l] == 0 {
			fmt.Fprintf(os.Stderr, "  + %s\n", l)
		}
	}
}
