//go:build dynlint_xtools

package main

import (
	"golang.org/x/tools/go/analysis/multichecker"
	"golang.org/x/tools/go/analysis/passes/copylocks"
	"golang.org/x/tools/go/analysis/passes/nilness"
	"golang.org/x/tools/go/analysis/passes/unusedwrite"
)

// runXtools hands the remaining arguments to the standard x/tools
// multichecker with the generally-useful correctness passes the dynlint
// suite bundles. multichecker.Main exits the process itself.
func runXtools() {
	multichecker.Main(nilness.Analyzer, unusedwrite.Analyzer, copylocks.Analyzer)
}
