// Command dynlint runs the repo's contract analyzers (loancheck,
// detcheck, sortedcheck — see internal/analysis) over package patterns
// and exits non-zero when any contract is violated:
//
//	go run ./scripts/dynlint ./...
//
// Findings print as path:line:col: analyzer: message, each tagged with
// the prose contract it defends. Exit status: 0 clean, 1 findings,
// 2 operational error. With the dynlint_xtools build tag (requires
// golang.org/x/tools in the module cache), `dynlint -xtools` also runs
// the bundled x/tools passes (nilness, unusedwrite, copylocks) via the
// standard multichecker; without the tag, -xtools explains how to enable
// it. docs/linting.md has the annotation grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"

	"dynlocal/internal/analysis"
	"dynlocal/internal/analysis/framework"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-xtools" {
		os.Args = append(os.Args[:1], os.Args[2:]...)
		runXtools() // does not return
	}
	version := flag.Bool("version", false, "print the dynlint build version and exit")
	flag.Usage = usage
	flag.Parse()
	if *version {
		fmt.Println(buildVersion())
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := framework.NewLoader(".")
	prog, err := loader.Load(patterns, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynlint:", err)
		os.Exit(2)
	}
	findings, err := framework.RunAnalyzers(prog, analysis.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dynlint: %d contract violation(s)\n", len(findings))
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, "usage: dynlint [-version] [-xtools args...] [package patterns]\n\nAnalyzers:\n")
	for _, a := range analysis.Suite() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprint(os.Stderr, "\nSuppress one finding with `//dynlint:ignore <check> <reason>` on (or above)\nthe flagged line; see docs/linting.md.\n")
}

// buildVersion reports the module version plus the VCS revision when the
// binary was built with stamping (plain `go run` usually is not; the
// Makefile and scripts/bench.sh record `git rev-parse` alongside).
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dynlint (no build info)"
	}
	out := "dynlint " + bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev := s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
			out += " " + rev
		case "vcs.modified":
			if s.Value == "true" {
				out += "+dirty"
			}
		}
	}
	return out
}
