//go:build !dynlint_xtools

package main

import (
	"fmt"
	"os"
)

// runXtools is the stub for builds without the dynlint_xtools tag: the
// container builds offline, so golang.org/x/tools (pinned in go.mod, see
// tools.go) may be absent from the module cache and the bundled passes
// cannot be compiled in.
func runXtools() {
	fmt.Fprintln(os.Stderr, "dynlint: built without the dynlint_xtools tag; the bundled x/tools passes (nilness, unusedwrite, copylocks) need golang.org/x/tools in the module cache:")
	fmt.Fprintln(os.Stderr, "  go run -tags dynlint_xtools ./scripts/dynlint -xtools ./...")
	os.Exit(2)
}
