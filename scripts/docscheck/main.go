// Command docscheck is the CI docs gate. It fails (exit 1) when
//
//   - any package in the module — the root library, internal/...,
//     cmd/... and examples/... — lacks a non-trivial package comment
//     (at least minDocLen characters of doc text on the package clause
//     of some file), or
//   - a relative markdown link in README.md, ARCHITECTURE.md or
//     docs/*.md points at a file that does not exist.
//
// Run it from the repo root: go run ./scripts/docscheck
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// minDocLen is the minimum rune count of a package comment before it
// counts as documentation rather than a lint-silencer.
const minDocLen = 60

func main() {
	var problems []string

	pkgDirs := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			pkgDirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck: walk:", err)
		os.Exit(1)
	}

	for dir := range pkgDirs {
		if msg := checkPackageDoc(dir); msg != "" {
			problems = append(problems, msg)
		}
	}

	// Load-bearing docs must exist (a rename or deletion fails here, not
	// as a silently-skipped glob miss); the rest of docs/ is globbed.
	required := []string{"README.md", "ARCHITECTURE.md", "docs/linting.md", "docs/benchmarking.md", "docs/checkpointing.md"}
	for _, md := range required {
		if _, err := os.Stat(md); err != nil {
			problems = append(problems, fmt.Sprintf("required doc %s is missing", md))
		}
	}
	mds := []string{"README.md", "ARCHITECTURE.md"}
	globbed, _ := filepath.Glob("docs/*.md")
	mds = append(mds, globbed...)
	for _, md := range mds {
		problems = append(problems, checkLinks(md)...)
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d packages documented, links in %v resolve\n", len(pkgDirs), mds)
}

// checkPackageDoc reports a problem string if no non-test file in dir
// carries a package comment of at least minDocLen runes.
func checkPackageDoc(dir string) string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Sprintf("%s: %v", dir, err)
	}
	best := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return fmt.Sprintf("%s: %v", path, err)
		}
		if f.Doc != nil {
			if n := len([]rune(strings.TrimSpace(f.Doc.Text()))); n > best {
				best = n
			}
		}
	}
	switch {
	case best == 0:
		return fmt.Sprintf("package %s has no package comment", dir)
	case best < minDocLen:
		return fmt.Sprintf("package %s: package comment is trivial (%d chars < %d)", dir, best, minDocLen)
	}
	return ""
}

var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks verifies that every relative markdown link target in md
// exists on disk (anchors are stripped; absolute URLs are skipped).
func checkLinks(md string) []string {
	data, err := os.ReadFile(md)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", md, err)}
	}
	var problems []string
	for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
			continue
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		resolved := filepath.Join(filepath.Dir(md), target)
		if _, err := os.Stat(resolved); err != nil {
			problems = append(problems, fmt.Sprintf("%s: broken link %q (%s does not exist)", md, m[1], resolved))
		}
	}
	return problems
}
