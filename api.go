package dynlocal

import (
	"bytes"
	"fmt"
	"io"

	"dynlocal/internal/adversary"
	"dynlocal/internal/algos/coloring"
	"dynlocal/internal/algos/mis"
	"dynlocal/internal/baseline"
	"dynlocal/internal/ckpt"
	"dynlocal/internal/core"
	"dynlocal/internal/dyngraph"
	"dynlocal/internal/engine"
	"dynlocal/internal/graph"
	"dynlocal/internal/prf"
	"dynlocal/internal/problems"
	"dynlocal/internal/verify"
)

// Core model types.
type (
	// Graph is an immutable simple undirected graph.
	Graph = graph.Graph
	// GraphBuilder accumulates edges into a Graph.
	GraphBuilder = graph.Builder
	// NodeID identifies a node in the potential-node universe.
	NodeID = graph.NodeID
	// EdgeKey is the canonical key of an undirected edge.
	EdgeKey = graph.EdgeKey
	// Point is a 2-D coordinate used by geometric workloads.
	Point = graph.Point
	// Value is a node output; Bot is ⊥.
	Value = problems.Value
	// Violation reports a node whose LCL condition fails.
	Violation = problems.Violation
	// Problem bundles the packing and covering halves of a problem.
	Problem = problems.PC
)

// Output values.
const (
	// Bot is ⊥: no output yet.
	Bot = problems.Bot
	// InMIS marks independent-set membership.
	InMIS = problems.InMIS
	// Dominated marks nodes dominated by an InMIS neighbor.
	Dominated = problems.Dominated
)

// Engine types.
type (
	// Engine drives one round-synchronous simulation.
	Engine = engine.Engine
	// EngineConfig parameterizes a simulation.
	EngineConfig = engine.Config
	// RoundInfo is the observer view of a completed round. Its Outputs,
	// Changed, Wake, EdgeAdds and EdgeRemoves slices are pooled (Retain
	// deep-copies a round to hold it longer); Changed plus EdgeAdds/EdgeRemoves
	// form the engine's round-delta plane, consolidated by Delta and
	// consumed whole by TDynamicChecker.Feed.
	RoundInfo = engine.RoundInfo
	// RoundDelta is the consolidated round-delta view (RoundInfo.Delta),
	// the argument of TDynamicChecker.Feed.
	RoundDelta = engine.RoundDelta
	// Quiescer is optionally implemented by algorithm node processes that
	// reach a terminal silent state, letting the engine's sparse activity
	// plane stop running them entirely.
	Quiescer = engine.Quiescer
	// Algorithm creates per-node processes for the engine.
	Algorithm = engine.Algorithm
	// Combined is a framework combination (Theorem 1.1) of a dynamic and
	// a network-static algorithm.
	Combined = core.Concat
	// Chained is the triple combination of the Section 3 remark: a
	// network-static base, a limited-dynamics mid pipeline with a
	// stronger (fresher) guarantee, and the unconditional outer pipeline.
	Chained = core.Chain
)

// Adversary types.
type (
	// Adversary produces the per-round communication graphs.
	Adversary = adversary.Adversary
	// AdversaryView is the model-granted information an adversary sees.
	AdversaryView = adversary.View
	// AdversaryStep is one adversary move (graph + wake set).
	AdversaryStep = adversary.Step
	// StaticAdversary plays one fixed graph.
	StaticAdversary = adversary.Static
	// ChurnAdversary inserts and deletes random edges every round.
	ChurnAdversary = adversary.Churn
	// EdgeMarkovAdversary flips footprint edges on and off.
	EdgeMarkovAdversary = adversary.EdgeMarkov
	// LocalStaticAdversary freezes α-balls while churning elsewhere.
	LocalStaticAdversary = adversary.LocalStatic
	// ConflictInjector inserts edges between equal-output nodes.
	ConflictInjector = adversary.ConflictInjector
	// WakeupAdversary staggers node wake-ups over an inner adversary.
	WakeupAdversary = adversary.Wakeup
	// ClairvoyantAdversary is the adaptive-offline adversary of the
	// remark after Lemma 5.2.
	ClairvoyantAdversary = adversary.LubyStaller
	// P2PChurnAdversary models a P2P overlay under heavy-tailed session
	// churn: joins, Pareto session lengths, rejoin-with-fresh-id, and
	// scheduled targeted mass departures, emitted delta-natively.
	P2PChurnAdversary = adversary.P2PChurn
	// MassDeparture schedules a targeted mass-departure event for
	// P2PChurnAdversary.
	MassDeparture = adversary.MassDeparture
	// ScriptedAdversary replays a recorded Trace from memory.
	ScriptedAdversary = adversary.Scripted
	// ScriptedStreamAdversary replays a trace straight from a streaming
	// decoder, one round per engine step, in constant memory.
	ScriptedStreamAdversary = adversary.ScriptedStream
)

// Window and checker types.
type (
	// SlidingWindow maintains G^∩T and G^∪T incrementally.
	SlidingWindow = dyngraph.Window
	// FracWindow is the δ-fraction window of Section 7.2.
	FracWindow = dyngraph.FracWindow
	// Trace records dynamic graph sequences for replay.
	Trace = dyngraph.Trace
	// TraceStreamEncoder writes a trace one validated round at a time, so
	// arbitrarily long runs spill to disk in constant memory.
	TraceStreamEncoder = dyngraph.StreamEncoder
	// TraceStreamDecoder reads and validates a trace one round at a time;
	// hostile input errors out, it never over-allocates or panics.
	TraceStreamDecoder = dyngraph.StreamDecoder
	// TraceRound is one decoded round of a trace stream (loaned buffers,
	// valid until the next pull).
	TraceRound = dyngraph.TraceRound
	// TDynamicChecker verifies T-dynamic solutions every round.
	TDynamicChecker = verify.TDynamic
	// TDynamicReport is one round's verification result.
	TDynamicReport = verify.TDynamicReport
	// PartialChecker verifies property B.1 every round.
	PartialChecker = verify.Partial
	// StabilityChecker verifies locally-static guarantees.
	StabilityChecker = verify.Stability
)

// DefaultOutputLag is the adversary obliviousness lag selected when
// EngineConfig.OutputLag is left zero — the 2-oblivious adversary that
// DMis (Lemma 5.1) requires.
const DefaultOutputLag = engine.DefaultOutputLag

// MISProblem returns the MIS problem decomposition (M_P, M_C).
func MISProblem() Problem { return problems.MIS() }

// ColoringProblem returns the (degree+1)-coloring decomposition (C_P, C_C).
func ColoringProblem() Problem { return problems.Coloring() }

// NewEngine creates a simulation engine.
func NewEngine(cfg EngineConfig, adv Adversary, algo Algorithm) *Engine {
	return engine.New(cfg, adv, algo)
}

// NewMIS returns the combined dynamic MIS algorithm of Corollary 1.3 for
// a universe of n nodes. Requires a 2-oblivious adversary (the engine
// default).
func NewMIS(n int) *Combined { return mis.NewMIS(n) }

// NewColoring returns the combined dynamic (degree+1)-coloring algorithm
// of Corollary 1.2 for a universe of n nodes. Valid against adaptive
// offline adversaries.
func NewColoring(n int) *Combined { return coloring.NewColoring(n) }

// NewChainedMIS returns the triple combination of the Section 3 remark
// for MIS: the mid pipeline runs DMis with the given smaller window,
// giving a fresher guarantee whenever the dynamics permit, observable
// through the Chained.MidProbe hook; the outer pipeline guarantees a
// T-dynamic solution unconditionally.
func NewChainedMIS(n, midWindow int) *Chained { return mis.NewChainedMIS(n, midWindow) }

// NewDMis returns the standalone T-dynamic MIS algorithm (Algorithm 4).
func NewDMis(n int) Algorithm { return mis.NewDynamic(n) }

// NewSMis returns the standalone network-static MIS algorithm
// (Algorithm 5).
func NewSMis(n int) Algorithm { return mis.NewNetworkStatic(n) }

// NewLuby returns the pipelined Luby algorithm for static graphs.
func NewLuby(n int) Algorithm { return mis.NewLuby(n) }

// NewDColor returns the standalone T-dynamic coloring algorithm
// (Algorithm 2).
func NewDColor(n int) Algorithm { return coloring.NewDynamic(n) }

// NewSColor returns the standalone network-static coloring algorithm
// (Algorithm 3).
func NewSColor(n int) Algorithm { return coloring.NewNetworkStatic(n) }

// NewBasicColoring returns the pipelined basic randomized coloring for
// static graphs (Algorithm 6).
func NewBasicColoring(n int) Algorithm { return coloring.NewBasic(n) }

// NewGreedyRepairMIS returns the recovery-period baseline for MIS.
func NewGreedyRepairMIS(n int) Algorithm { return baseline.GreedyRepairMIS{N: n} }

// NewGreedyRepairColoring returns the recovery-period baseline for
// coloring.
func NewGreedyRepairColoring(n int) Algorithm { return baseline.GreedyRepairColoring{N: n} }

// NewRestartMIS returns the pipelined-restart strawman of Section 1.1
// for MIS (T-dynamic but unstable).
func NewRestartMIS(n int) *Combined {
	return baseline.NewRestartMIS(n, &mis.DMisFactory{N: n})
}

// Workload generators. Each takes a seed so that workload randomness is
// independent of algorithm randomness.

// GNP returns an Erdős–Rényi G(n, p) graph.
func GNP(n int, p float64, seed uint64) *Graph {
	return graph.GNP(n, p, prf.NewStream(seed, 0, 0, prf.PurposeWorkload))
}

// RandomGeometric returns a unit-disk graph on n uniform points.
func RandomGeometric(n int, radius float64, seed uint64) *Graph {
	pts := graph.RandomPoints(n, prf.NewStream(seed, 0, 0, prf.PurposeWorkload))
	return graph.Geometric(pts, radius)
}

// Geometric returns the unit-disk graph of the given points.
func Geometric(pts []Point, radius float64) *Graph { return graph.Geometric(pts, radius) }

// RandomPoints draws n uniform points in the unit square.
func RandomPoints(n int, seed uint64) []Point {
	return graph.RandomPoints(n, prf.NewStream(seed, 0, 0, prf.PurposeWorkload))
}

// Cycle returns the n-cycle.
func Cycle(n int) *Graph { return graph.Cycle(n) }

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *Graph { return graph.Grid(rows, cols) }

// Complete returns K_n.
func Complete(n int) *Graph { return graph.Complete(n) }

// NewGraphBuilder returns a builder over n node slots.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// NewChurn returns a churn adversary starting from base, inserting add
// and deleting del random edges per round.
func NewChurn(base *Graph, add, del int, seed uint64) *ChurnAdversary {
	return &adversary.Churn{Base: base, Add: add, Del: del, Seed: seed}
}

// NewEdgeMarkov returns an edge-Markov adversary over the footprint.
func NewEdgeMarkov(footprint *Graph, pOn, pOff float64, seed uint64) *EdgeMarkovAdversary {
	return &adversary.EdgeMarkov{Footprint: footprint, POn: pOn, POff: pOff, Seed: seed}
}

// NewScripted replays a recorded trace as an adversary (delta-natively —
// no graph is materialized while replaying).
func NewScripted(tr *Trace) *ScriptedAdversary { return adversary.NewScripted(tr) }

// NewScriptedStream replays a trace straight from a streaming decoder:
// one round is pulled per engine step, so traces far larger than memory
// replay at O(changes)/round. Check its Err after the run when the trace
// bytes are untrusted.
func NewScriptedStream(d *TraceStreamDecoder) *ScriptedStreamAdversary {
	return adversary.NewScriptedStream(d)
}

// NewTrace creates an empty in-memory trace over an n-node universe.
func NewTrace(n int) *Trace { return dyngraph.NewTrace(n) }

// DecodeTrace reads a whole trace from the binary wire format into
// memory, validating it as untrusted input.
func DecodeTrace(r io.Reader) (*Trace, error) { return dyngraph.DecodeTrace(r) }

// NewTraceStreamEncoder starts a trace stream over an n-node universe
// holding exactly rounds rounds.
func NewTraceStreamEncoder(w io.Writer, n, rounds int) (*TraceStreamEncoder, error) {
	return dyngraph.NewStreamEncoder(w, n, rounds)
}

// NewTraceStreamDecoder reads and validates a trace stream header; the
// rounds follow via Next/NextDeltas.
func NewTraceStreamDecoder(r io.Reader) (*TraceStreamDecoder, error) {
	return dyngraph.NewStreamDecoder(r)
}

// WriteCheckpoint serializes the full deterministic run state — the
// engine and, when non-nil, the T-dynamic checker — to w as one composed
// checkpoint stream (see docs/checkpointing.md). It must be called at a
// round barrier, i.e. between Step calls, never from inside an OnRound
// observer. The stream is framed and CRC-protected; a torn or corrupted
// checkpoint never restores. Callers writing to a file should write a
// temporary file and rename it into place after a successful return, the
// pattern `dynsim -checkpoint` uses.
func WriteCheckpoint(w io.Writer, e *Engine, c *TDynamicChecker) error {
	cw := ckpt.NewWriter(w)
	e.CheckpointTo(cw)
	if c != nil {
		c.SaveState(cw)
	}
	return cw.Close()
}

// ReadCheckpoint restores a checkpoint written by WriteCheckpoint into a
// freshly constructed engine (and checker, when one was saved — pass nil
// to match a nil at write time). The engine, algorithm, adversary and
// checker must be rebuilt with the same constructors and configuration
// as the checkpointed run; the header rejects any mismatch. After a
// successful return the engine continues from the checkpointed round,
// bit-identical to the uninterrupted run under any worker count.
func ReadCheckpoint(r io.Reader, e *Engine, c *TDynamicChecker) error {
	cr := ckpt.NewReader(r)
	e.RestoreFrom(cr)
	if c != nil {
		c.LoadState(cr)
	}
	if err := cr.Err(); err != nil {
		return err
	}
	return cr.Close()
}

// ChainMagic is the leading bytes of a checkpoint chain container
// written by WriteCheckpointChain. A plain WriteCheckpoint stream starts
// with the varint-framed "DLCK1" header instead, so readers can sniff
// which format a file holds from its first byte.
const ChainMagic = ckpt.ChainMagic

// RestoreArena is a reusable allocation pool for checkpoint restores:
// node states, pipeline slots and snapshot buffers are carved from its
// chunks instead of the heap, so a restore-heavy loop (fault-tolerant
// replay, chain application, restore benchmarks) allocates almost
// nothing after warm-up. The arena's memory is owned by the one restored
// run built from it — call Reset only after that engine and checker have
// been dropped, and never share one arena across concurrent restores.
type RestoreArena = ckpt.RestoreArena

// NewRestoreArena creates an empty restore arena.
func NewRestoreArena() *RestoreArena { return ckpt.NewRestoreArena() }

// ReadCheckpointArena is ReadCheckpoint with the restore's allocations
// carved from a (optionally nil) reusable arena. See RestoreArena for
// the ownership rule.
func ReadCheckpointArena(r io.Reader, e *Engine, c *TDynamicChecker, a *RestoreArena) error {
	cr := ckpt.NewReader(r)
	cr.SetArena(a)
	e.RestoreFrom(cr)
	if c != nil {
		c.LoadState(cr)
	}
	if err := cr.Err(); err != nil {
		return err
	}
	return cr.Close()
}

// WriteCheckpointChain starts an incremental checkpoint chain on w: the
// chain magic followed by one full base record capturing the engine and,
// when non-nil, the checker — the same composed state WriteCheckpoint
// serializes, framed as a chain record. The record is noted as the chain
// head, so subsequent AppendCheckpointDelta calls diff against it. Like
// WriteCheckpoint it must run at a round barrier. The same c (nil or
// not) must be passed to every call on one chain.
func WriteCheckpointChain(w io.Writer, e *Engine, c *TDynamicChecker) error {
	if err := ckpt.WriteChainMagic(w); err != nil {
		return err
	}
	var buf bytes.Buffer
	cw := ckpt.NewWriter(&buf)
	e.CheckpointTo(cw)
	if c != nil {
		c.SaveState(cw)
	}
	if err := cw.Close(); err != nil {
		return err
	}
	if err := ckpt.AppendChainRecord(w, buf.Bytes()); err != nil {
		return err
	}
	e.NoteCheckpointBase(cw.Sum32())
	if c != nil {
		c.NoteCheckpoint()
	}
	return nil
}

// AppendCheckpointDelta appends one delta record to a chain started with
// WriteCheckpointChain: only the state that moved since the previous
// record — dirty nodes, the net topology diff, changed snapshot-ring
// columns, the window's dirty spans and slots — so its cost scales with
// the inter-checkpoint activity, not with the universe size. On success
// the record becomes the chain tail; on error nothing is noted, and the
// next append diffs against the last record that actually persisted —
// exactly what a crashed-then-resumed appender needs.
func AppendCheckpointDelta(w io.Writer, e *Engine, c *TDynamicChecker) error {
	var buf bytes.Buffer
	cw := ckpt.NewWriter(&buf)
	e.CheckpointDeltaTo(cw)
	if c != nil {
		c.SaveDelta(cw)
	}
	if err := cw.Close(); err != nil {
		return err
	}
	if err := ckpt.AppendChainRecord(w, buf.Bytes()); err != nil {
		return err
	}
	e.NoteCheckpoint(cw.Sum32())
	if c != nil {
		c.NoteCheckpoint()
	}
	return nil
}

// ReadCheckpointChain restores a chain written by WriteCheckpointChain +
// AppendCheckpointDelta into a freshly constructed engine and checker
// (nil to match a nil at write time), optionally carving allocations
// from a reusable arena. Every record is CRC-verified in memory and its
// parent linkage validated before it applies, so a torn tail, a
// reordered record or a delta over the wrong base fails cleanly. After a
// successful return the run both continues bit-identically from the last
// record's round and keeps appending deltas to the same chain.
func ReadCheckpointChain(r io.Reader, e *Engine, c *TDynamicChecker, a *RestoreArena) error {
	cr := ckpt.NewChainReader(r)
	first := true
	for {
		rec, err := cr.Next()
		if err == io.EOF {
			if first {
				return fmt.Errorf("dynlocal: empty checkpoint chain")
			}
			if c != nil {
				return c.FinishChain()
			}
			return nil
		}
		if err != nil {
			return err
		}
		rr := ckpt.NewReader(bytes.NewReader(rec))
		rr.SetArena(a)
		if first {
			e.RestoreFrom(rr)
			if c != nil {
				c.LoadState(rr)
			}
		} else {
			e.RestoreDeltaFrom(rr)
			if c != nil {
				c.LoadDelta(rr)
			}
		}
		if err := rr.Err(); err != nil {
			return err
		}
		if err := rr.Close(); err != nil {
			return err
		}
		if first {
			e.NoteCheckpointBase(rr.Sum32())
		} else {
			e.NoteCheckpoint(rr.Sum32())
		}
		if c != nil {
			c.NoteCheckpoint()
		}
		first = false
	}
}

// RecoverTrace salvages a torn trace recording — a crash mid-write
// leaves the file truncated anywhere — by re-encoding the longest
// decodable round prefix of src to dst with a corrected header. It
// returns the number of rounds recovered.
func RecoverTrace(src io.ReadSeeker, dst io.Writer) (int, error) {
	return dyngraph.RecoverTrace(src, dst)
}

// StaggeredSchedule wakes perRound nodes per round in id order.
func StaggeredSchedule(n, perRound int) []int { return adversary.StaggeredSchedule(n, perRound) }

// UniformRandomSchedule wakes each node in a uniform round of [1, maxRound].
func UniformRandomSchedule(n, maxRound int, seed uint64) []int {
	return adversary.UniformRandomSchedule(n, maxRound, seed)
}

// NewTDynamicChecker verifies T-dynamic solutions round by round. Inside
// an engine OnRound observer, feed it with Feed(info.Delta()): the
// checker then maintains violation state purely from the engine's
// round-delta plane — no graph materialization, no O(|E_r|) edge scan
// and no O(n) output scan, so a verified round costs O(changes).
// ObserveChanged (graph-fed window) and Observe (additionally self-diffs
// the outputs) remain as fallbacks for topologies or outputs produced
// outside the engine.
func NewTDynamicChecker(p Problem, t, n int) *TDynamicChecker {
	return verify.NewTDynamic(p, t, n)
}

// NewPartialChecker verifies property B.1 round by round.
func NewPartialChecker(p Problem) *PartialChecker { return verify.NewPartial(p) }

// NewStabilityChecker verifies locally-static guarantees: output changes
// of nodes whose α-ball has been static for more than wait rounds are
// violations.
func NewStabilityChecker(n, alpha, wait int) *StabilityChecker {
	return verify.NewStability(n, alpha, wait)
}

// NewSlidingWindow creates a T-round sliding window over n nodes.
func NewSlidingWindow(t, n int) *SlidingWindow { return dyngraph.NewWindow(t, n) }

// NewFracWindow creates a δ-fraction window (Section 7.2), 1 <= t <= 64.
func NewFracWindow(t, n int) *FracWindow { return dyngraph.NewFracWindow(t, n) }

// AllNodes returns the wake set {0, …, n-1}.
func AllNodes(n int) []NodeID { return adversary.AllNodes(n) }
