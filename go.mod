module dynlocal

go 1.22

require golang.org/x/tools v0.24.0 // dynlint -xtools passes only; gated behind the dynlint_xtools build tag
