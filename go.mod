module dynlocal

go 1.22
